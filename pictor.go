// Package pictor is a benchmarking framework for interactive 3D
// applications in the cloud — a faithful, simulation-based reproduction
// of "A Benchmarking Framework for Interactive 3D Applications in the
// Cloud" (Liu et al., MICRO 2020, arXiv:2006.13378).
//
// Pictor has two halves, mirroring the paper:
//
//   - An intelligent client framework: a CNN recognizes the objects in
//     each frame streamed to the client and an LSTM generates
//     human-like inputs from them, so benchmarks can be driven
//     reliably even when scenes are random. Both networks are real
//     (pure-Go, trained from recorded sessions), not stubs.
//   - A performance analysis framework: inputs are tagged at the client
//     proxy and tracked through every pipeline stage (network, server
//     proxy, X event queue, application logic, GPU render, PCIe frame
//     copy, compression, network again) via API hooks, yielding exact
//     round-trip times, per-stage latencies, FPS, utilization, PMU
//     counters and power.
//
// Because this repository has no GPUs, games or client fleet, the whole
// cloud rendering system of the paper's Figure 1 — TurboVNC-style
// proxies, a VirtualGL-style interposer, X11/OpenGL layers, a GPU with
// shared caches, PCIe, a multi-core server and per-instance networks —
// runs as a deterministic discrete-event simulation. See DESIGN.md for
// the substitution argument and EXPERIMENTS.md for paper-vs-measured
// results on every figure and table.
//
// # Quick start
//
//	cluster := pictor.NewCluster(pictor.Options{Seed: 1})
//	cluster.AddInstance(pictor.NewInstanceConfig(pictor.SuiteByName("STK"), pictor.HumanDriver()))
//	cluster.RunSeconds(3, 60)
//	res := cluster.Results()[0]
//	fmt.Printf("server %.1f fps, client %.1f fps, RTT %.1f ms\n",
//		res.ServerFPS, res.ClientFPS, res.RTT.Mean)
package pictor

import (
	"pictor/internal/app"
	"pictor/internal/container"
	"pictor/internal/core"
	"pictor/internal/exp"
	"pictor/internal/fleet"
	"pictor/internal/sim"
	"pictor/internal/vgl"
)

// Re-exported configuration types. See the internal packages for the
// full documentation of each field.
type (
	// Options configures a simulated server machine.
	Options = core.Options
	// InstanceConfig configures one benchmark instance.
	InstanceConfig = core.InstanceConfig
	// Profile is a benchmark's complete behavioural description.
	Profile = app.Profile
	// InstanceResult is one instance's measurements after a run.
	InstanceResult = core.InstanceResult
	// MethodologyResult is one Figure-6/Table-3 row.
	MethodologyResult = core.MethodologyResult
	// OptimizationResult is one Figure-22 row.
	OptimizationResult = core.OptimizationResult
	// ContainerResult is one Figure-20 row.
	ContainerResult = core.ContainerResult
	// OverheadResult is one §4 framework-overhead row.
	OverheadResult = core.OverheadResult
	// ExperimentConfig bounds experiment cost and selects the runner's
	// parallelism (Parallel) and repetition count (Reps).
	ExperimentConfig = core.ExperimentConfig
	// DriverFactory builds a client driver for an instance.
	DriverFactory = core.DriverFactory
	// DriverKind names a client driver declaratively for experiment
	// trials (Human, IC, DeskBench, SlowMotion).
	DriverKind = exp.DriverKind
	// Trial is one declarative benchmark session for the runner.
	Trial = exp.Trial
	// InstanceSpec describes one benchmark instance of a Trial.
	InstanceSpec = exp.InstanceSpec
	// TrialResult is one executed trial's measurement bundle.
	TrialResult = core.TrialResult
	// SuiteGridResult is the full paper evaluation in one value.
	SuiteGridResult = core.SuiteGridResult
	// FleetShape turns a trial into a multi-server consolidation
	// scenario (machines × placement policy × arrival mix).
	FleetShape = exp.FleetShape
	// FleetResult is one multi-server consolidation outcome.
	FleetResult = core.FleetResult
	// MachineResult is one fleet machine's outcome.
	MachineResult = core.MachineResult
	// ChurnResult is one epoch-based fleet-churn outcome (Poisson
	// arrivals, exponential sessions, optional RTT-driven migration).
	ChurnResult = core.ChurnResult
	// EpochResult is one churn epoch's fleet-wide outcome.
	EpochResult = core.EpochResult
	// MachineOccupancy is one machine's epoch snapshot (state,
	// residency, fidelity tier, measurements), recorded when the shape
	// sets OccupancyDetail.
	MachineOccupancy = core.MachineOccupancy
	// TrialPanic reports one (trial, rep) unit that panicked under
	// RunTrialsChecked, carrying the trial's ID, Key() and rep.
	TrialPanic = exp.PanicError
	// ExperimentSpec is the declarative experiment vocabulary shared by
	// the CLI, the benchmark server and RunSpec: one struct naming a
	// comparison kind plus its knobs, validated by Normalize.
	ExperimentSpec = core.ExperimentSpec
	// SpecOutcome is RunSpec's result envelope: the as-executed spec
	// plus the one payload its kind selects.
	SpecOutcome = core.SpecOutcome
	// ChurnSink observes a churn trial's per-epoch results as they
	// close (streaming result API; set it on Trial.Sink).
	ChurnSink = core.ChurnSink
	// ChurnSinkFactory hands out one ChurnSink per execution unit
	// (rep), for observers that keep per-rep streams separate.
	ChurnSinkFactory = core.ChurnSinkFactory
)

// Placement-policy names for FleetShape.Policy.
const (
	PolicyRoundRobin  = fleet.PolicyRoundRobin
	PolicyLeastCount  = fleet.PolicyLeastCount
	PolicyLeastDemand = fleet.PolicyLeastDemand
	PolicyBinPack     = fleet.PolicyBinPack
)

// Arrival-mix names for FleetShape.Mix.
const (
	MixSuite    = string(fleet.MixSuite)
	MixShuffled = string(fleet.MixShuffled)
	MixHeavy    = string(fleet.MixHeavy)
)

// Arrival-rate schedule names for FleetShape.RateSchedule ("" and
// ScheduleConstant keep the flat historical rate).
const (
	ScheduleConstant = fleet.ScheduleConstant
	ScheduleDiurnal  = fleet.ScheduleDiurnal
	ScheduleFlash    = fleet.ScheduleFlash
)

// Schedules lists the arrival-rate schedules in documentation order.
func Schedules() []string { return fleet.Schedules() }

// FleetPolicyNames lists every placement policy in comparison order.
func FleetPolicyNames() []string { return fleet.PolicyNames() }

// Declarative driver kinds for the experiment entry points.
const (
	Human      = exp.DriverHuman
	IC         = exp.DriverIC
	DeskBench  = exp.DriverDeskBench
	SlowMotion = exp.DriverSlowMotion
)

// Cluster is a simulated cloud rendering server with its clients.
type Cluster struct {
	inner *core.Cluster
}

// NewCluster creates a server machine. The zero Options select the
// paper's testbed (8 cores, GTX1080Ti-class GPU, 1 Gbps per-instance
// networks).
func NewCluster(opts Options) *Cluster {
	return &Cluster{inner: core.NewCluster(opts)}
}

// AddInstance places a benchmark instance (application + VNC proxies +
// client) on the server.
func (c *Cluster) AddInstance(cfg InstanceConfig) {
	c.inner.AddInstance(cfg)
}

// RunSeconds simulates warmup (discarded) plus a measurement window.
func (c *Cluster) RunSeconds(warmup, measure float64) {
	c.inner.Run(sim.DurationOfSeconds(warmup), sim.DurationOfSeconds(measure))
}

// Results snapshots every instance's measurements.
func (c *Cluster) Results() []InstanceResult {
	out := make([]InstanceResult, len(c.inner.Instances))
	for i, inst := range c.inner.Instances {
		out[i] = inst.Result()
	}
	return out
}

// TotalPowerWatts reports modelled wall power over the last window.
func (c *Cluster) TotalPowerWatts() float64 { return c.inner.TotalPowerWatts() }

// Suite returns every registered workload profile in stable
// registration order: the paper's six-benchmark suite (Table 2) first —
// SuperTuxKart, 0 A.D., Red Eclipse, Dota2, InMind, IMHOTEP — then the
// extended scenario families (CloudCAD, VoluPlay, CasualZen).
func Suite() []Profile { return app.Suite() }

// PaperSuite returns exactly the paper's six-benchmark suite (Table 2)
// in paper order — the default workload set of every experiment.
func PaperSuite() []Profile { return app.PaperSuite() }

// ProfileNames lists every registered profile's short key in stable
// order (the -profiles / FleetShape.Profiles vocabulary).
func ProfileNames() []string { return app.Names() }

// ResolveProfiles turns a workload spec — "" for the paper six, "all"
// for every registered profile, or a comma-separated name list — into
// concrete profiles, erroring with the registered vocabulary on unknown
// names. Use it to validate ExperimentConfig.Profiles or
// FleetShape.Profiles before running.
func ResolveProfiles(spec string) ([]Profile, error) { return app.Resolve(spec) }

// RegisterProfile adds a calibrated workload profile to the registry,
// making it available to SuiteByName, arrival mixes, fleet shapes and
// the -profiles selector. It panics on invalid or duplicate
// registrations (register at init time).
func RegisterProfile(p Profile) { app.Register(p) }

// SuiteByName finds a registered profile by short name (STK, 0AD, RE,
// D2, IM, ITP, CAD, VV, CZ, plus anything registered); it panics on
// unknown names (the vocabulary is fixed at registration time).
func SuiteByName(name string) Profile {
	p, ok := app.ByName(name)
	if !ok {
		panic("pictor: unknown benchmark " + name)
	}
	return p
}

// NewInstanceConfig returns the standard instance setup: analysis
// framework on, baseline (unoptimized) interposer, bare metal.
func NewInstanceConfig(prof Profile, driver DriverFactory) InstanceConfig {
	return core.NewInstanceConfig(prof, driver)
}

// HumanDriver plays the benchmark with the reference human policy.
func HumanDriver() DriverFactory { return core.HumanDriver() }

// IntelligentClientDriver records a human session for the benchmark,
// trains the CNN+LSTM models (cached per process), and plays with the
// trained intelligent client.
func IntelligentClientDriver(prof Profile) DriverFactory {
	models, _, _ := core.TrainedModels(prof)
	return core.ICDriver(models)
}

// OptimizedInterposer returns the §6-optimized frame-copy options
// (XGetWindowAttributes memoization + two-step asynchronous copy).
func OptimizedInterposer() vgl.Options { return vgl.Optimized() }

// BaselineInterposer returns the unoptimized TurboVNC/VirtualGL path.
func BaselineInterposer() vgl.Options { return vgl.DefaultOptions() }

// DockerContainer returns the calibrated container-overhead model for
// InstanceConfig.Container.
func DockerContainer() container.Overheads { return container.Docker() }

// DefaultExperimentConfig is the configuration the benchmark harness
// and CLI use.
func DefaultExperimentConfig() ExperimentConfig { return core.DefaultExperimentConfig() }

// RunMethodologyComparison reproduces Figure 6 / Table 3 for one
// benchmark: RTT distributions and mean-RTT errors for the human
// reference, Pictor's intelligent client, DeskBench, Chen et al. and
// Slow-Motion.
func RunMethodologyComparison(prof Profile, cfg ExperimentConfig) []MethodologyResult {
	return core.RunMethodologyComparison(prof, cfg)
}

// RunCharacterization runs n co-located instances of a benchmark under
// the given driver kind and returns per-instance measurements
// (§5.1–5.2).
func RunCharacterization(prof Profile, n int, driver DriverKind, cfg ExperimentConfig) []InstanceResult {
	return core.RunCharacterization(prof, n, driver, cfg)
}

// RunCharacterizationWithPower is RunCharacterization plus modelled
// wall power (Figure 17).
func RunCharacterizationWithPower(prof Profile, n int, driver DriverKind, cfg ExperimentConfig) ([]InstanceResult, float64) {
	return core.RunCharacterizationWithPower(prof, n, driver, cfg)
}

// RunCharacterizationSweep runs the whole 1..maxN co-location sweep
// as one batch, executed concurrently by the runner. Entry n-1 holds
// the results of n copies; the second return is wall power per count.
func RunCharacterizationSweep(prof Profile, maxN int, driver DriverKind, cfg ExperimentConfig) ([][]InstanceResult, []float64) {
	return core.RunCharacterizationSweep(prof, maxN, driver, cfg)
}

// RunPair co-locates two (possibly different) benchmarks (§5.3).
func RunPair(a, b Profile, cfg ExperimentConfig) (ra, rb InstanceResult) {
	return core.RunPair(a, b, cfg)
}

// RunSuiteGrid executes the paper's complete evaluation grid — every
// experiment over every suite benchmark — on the parallel experiment
// runner. cfg.Parallel shards independent trials across cores;
// cfg.Reps repeats each with derived seeds.
func RunSuiteGrid(cfg ExperimentConfig) SuiteGridResult {
	return core.RunSuiteGrid(cfg)
}

// RunTrials executes caller-assembled trials on the experiment runner,
// returning results indexed [trial][rep]. This is the extension point
// for custom grids beyond the paper's figures. Trials whose Measure is
// zero (the constructors below leave windows unset) inherit the
// config's WarmupSeconds/Seconds.
func RunTrials(trials []Trial, cfg ExperimentConfig) [][]TrialResult {
	return core.RunTrials(trials, cfg)
}

// RunTrialsChecked is RunTrials with per-unit fault isolation: a
// panicking (trial, rep) unit fails only its own slot — left as the
// zero TrialResult — and is reported as a TrialPanic identifying the
// trial by ID and Key(). Failures are ordered by (trial, rep)
// regardless of worker scheduling. RunTrials itself re-panics on the
// first failure, preserving its historical contract.
func RunTrialsChecked(trials []Trial, cfg ExperimentConfig) ([][]TrialResult, []*TrialPanic) {
	return core.RunTrialsChecked(trials, cfg)
}

// EffectiveParallel resolves a Parallel setting the way the runner
// does (<= 0 means every available core), for display purposes.
func EffectiveParallel(n int) int { return exp.EffectiveParallel(n) }

// EffectiveReps resolves a Reps setting the way the runner does.
func EffectiveReps(n int) int { return exp.EffectiveReps(n) }

// SingleTrial is a one-instance trial with the standard setup.
func SingleTrial(prof Profile, d DriverKind) Trial { return exp.Single(prof, d) }

// HomogeneousTrial co-locates n identical instances.
func HomogeneousTrial(prof Profile, d DriverKind, n int) Trial {
	return exp.Homogeneous(prof, d, n)
}

// PairTrial co-locates two human-driven benchmarks.
func PairTrial(a, b Profile) Trial { return exp.Pair(a, b) }

// RunFleetConsolidation places a stream of instance requests across a
// multi-machine fleet with the shape's placement policy and runs every
// machine as its own simulated server, reporting per-machine RTT
// distributions, QoS-violation counts and fleet-wide power.
func RunFleetConsolidation(shape FleetShape, cfg ExperimentConfig) FleetResult {
	return core.RunFleetConsolidation(shape, cfg)
}

// RunFleetComparison runs the shape under every placement policy as one
// batch on the parallel runner, in FleetPolicyNames order.
func RunFleetComparison(shape FleetShape, cfg ExperimentConfig) []FleetResult {
	return core.RunFleetComparison(shape, cfg)
}

// FleetComparisonTable renders the policy-comparison rows as an aligned
// text table.
func FleetComparisonTable(rs []FleetResult) string {
	return core.FleetComparisonTable(rs)
}

// FleetTrialOf is a multi-server trial with the given shape, for
// caller-assembled grids via RunTrials.
func FleetTrialOf(shape FleetShape) Trial { return exp.FleetTrial(shape) }

// RunFleetChurn drives a fleet shape through its churn horizon: a
// deterministic Poisson arrival process with exponential session
// lengths, per-epoch execution of every machine, and (when
// shape.Migrate is set) a migration controller that re-places sessions
// off machines whose measured mean RTT violates the QoS ceiling.
// Requires shape.Epochs >= 1 plus positive ArrivalRate and
// MeanSessionEpochs.
func RunFleetChurn(shape FleetShape, cfg ExperimentConfig) ChurnResult {
	return core.RunFleetChurn(shape, cfg)
}

// RunChurnComparison runs the shape's churn twice as one batch — static
// placement and with the migration controller — over the identical
// tenant population, returning {static, migrated}.
func RunChurnComparison(shape FleetShape, cfg ExperimentConfig) []ChurnResult {
	return core.RunChurnComparison(shape, cfg)
}

// ChurnTable renders one churn outcome as per-epoch rows (lifecycle,
// QoS, interactivity, power).
func ChurnTable(r ChurnResult) string { return core.ChurnTable(r) }

// OccupancyTable renders the per-(machine, epoch) occupancy rows of a
// churn result recorded with OccupancyDetail — the placement-heatmap
// feed. Empty when the shape did not opt in.
func OccupancyTable(r ChurnResult) string { return core.OccupancyTable(r) }

// ChurnComparisonTable renders churn outcomes side by side (static vs
// migrate).
func ChurnComparisonTable(rs []ChurnResult) string { return core.ChurnComparisonTable(rs) }

// RunFaultComparison runs a faulty churn shape (MTBFEpochs > 0) three
// ways as one batch — no faults, faults with drop-on-failure, and
// faults with the shape's retry/degradation policy (defaulted to
// 3 attempts, 1-epoch backoff and brown-out tiers when unset) — over
// the identical tenant population, execution noise and failure
// schedule, returning {healthy, drop, resilient}.
func RunFaultComparison(shape FleetShape, cfg ExperimentConfig) []ChurnResult {
	return core.RunFaultComparison(shape, cfg)
}

// RunSpec normalizes and executes a declarative experiment spec — the
// one entry point over the whole experiment vocabulary, running exactly
// the comparison batch the typed Run* entry points run (each of those
// is thin sugar over the same trial lowering). parallel shards the
// batch's independent trials across cores (<= 0 means every core).
// Exactly one field of the outcome is populated, selected by the
// spec's kind; invalid specs return Normalize's error.
func RunSpec(spec ExperimentSpec, parallel int) (SpecOutcome, error) {
	return core.RunSpec(spec, parallel)
}

// RunOptimization reproduces Figure 22 for one benchmark.
func RunOptimization(prof Profile, cfg ExperimentConfig) OptimizationResult {
	return core.RunOptimization(prof, cfg)
}

// RunContainerOverhead reproduces Figure 20 for one benchmark.
func RunContainerOverhead(prof Profile, cfg ExperimentConfig) ContainerResult {
	return core.RunContainerOverhead(prof, cfg)
}

// RunOverhead reproduces the §4 analysis-framework overhead experiment.
func RunOverhead(prof Profile, cfg ExperimentConfig) OverheadResult {
	return core.RunOverhead(prof, cfg)
}
