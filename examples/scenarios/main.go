// Scenarios: sweep the full nine-profile workload registry — the
// paper's Table-2 six plus the extended CAD, VV and CZ families —
// through a multi-server fleet under every placement policy.
//
// The paper's suite is fixed at six games; the registry turns "add a
// workload" into a ~60-line registration. This demo shows why that
// matters for placement: CloudCAD's huge-footprint/low-motion profile,
// VoluPlay's codec-hostile bandwidth appetite and CasualZen's
// consolidation-friendly lightness stress axes none of the six games
// do, and the policy comparison shifts once they join the mix.
package main

import (
	"flag"
	"fmt"
	"time"

	"pictor"
)

func main() {
	machines := flag.Int("machines", 4, "server machine count")
	requests := flag.Int("requests", 12, "instance-request stream length")
	mix := flag.String("mix", pictor.MixSuite, "arrival mix (suite, shuffled, heavy)")
	profiles := flag.String("profiles", "all", "workload set: \"all\", \"\" for the paper six, or names like STK,CAD,VV")
	seconds := flag.Float64("seconds", 20, "measurement window (simulated seconds)")
	parallel := flag.Int("parallel", 0, "runner workers (0 = all cores)")
	flag.Parse()

	suite, err := pictor.ResolveProfiles(*profiles)
	if err != nil {
		fmt.Println(err)
		return
	}

	fmt.Printf("workload registry (%d profiles active of %d registered):\n",
		len(suite), len(pictor.ProfileNames()))
	for _, p := range suite {
		fmt.Printf("  %-4s %-14s %-18s %4dx%-4d  footprint %4.0f MB  heavy-weight %d\n",
			p.Name, p.FullName, p.Genre, p.Width, p.Height, p.Mem.FootprintMB, p.HeavyWeight)
	}

	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = *seconds
	cfg.Parallel = *parallel

	shape := pictor.FleetShape{
		Machines: *machines,
		Mix:      *mix,
		Requests: *requests,
		Profiles: *profiles,
	}

	fmt.Printf("\nconsolidating %d requests (%s mix) onto %d machines, all %d policies...\n\n",
		*requests, *mix, *machines, len(pictor.FleetPolicyNames()))
	start := time.Now()
	rs := pictor.RunFleetComparison(shape, cfg)
	fmt.Print(pictor.FleetComparisonTable(rs))
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	// Show how the bin-packer mixes the new families with the paper's
	// six — CZ fills gaps next to heavyweights, CAD gets room.
	for _, r := range rs {
		if r.Policy != pictor.PolicyBinPack {
			continue
		}
		fmt.Println("\nbinpack placement:")
		for _, m := range r.Machines {
			fmt.Printf("  machine %d (predicted %.1f cores):", m.Machine, m.PredictedDemand)
			if len(m.Results) == 0 {
				fmt.Print("  idle")
			}
			for _, ir := range m.Results {
				fmt.Printf("  %s %.0ffps", ir.Benchmark, ir.ClientFPS)
			}
			fmt.Println()
		}
	}
}
