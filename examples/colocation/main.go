// Colocation: the paper's consolidation question (§5.2) — how many 3D
// instances can share one server before quality-of-service (25 FPS)
// collapses, and what it does to latency and power. All four
// co-location counts are submitted as one batch of independent trials,
// so the experiment runner executes the whole sweep concurrently.
package main

import (
	"fmt"

	"pictor"
)

func main() {
	prof := pictor.SuiteByName("IM") // InMind VR
	fmt.Printf("co-locating 1–4 instances of %s on one server:\n\n", prof.FullName)

	cfg := pictor.DefaultExperimentConfig()
	cfg.Seed = 7
	cfg.Parallel = 0 // 0 = use every core

	trials := make([]pictor.Trial, 4)
	for n := 1; n <= 4; n++ {
		trials[n-1] = pictor.HomogeneousTrial(prof, pictor.Human, n)
		trials[n-1].Warmup, trials[n-1].Measure, trials[n-1].Seed = 3, 25, cfg.Seed
	}
	out := pictor.RunTrials(trials, cfg)

	var basePower float64
	for n := 1; n <= 4; n++ {
		tr := out[n-1][0]
		r := tr.Results[0]
		perInstance := tr.PowerWatts / float64(n)
		if n == 1 {
			basePower = perInstance
		}
		qos := "meets 25-FPS QoS"
		if r.ClientFPS < 25 {
			qos = "BELOW QoS"
		}
		fmt.Printf("%d instance(s): client %5.1f fps (%s)   RTT %6.1f ms   L3 miss %4.1f%%   %5.1f W/instance (%+.0f%%)\n",
			n, r.ClientFPS, qos, r.RTT.Mean, r.L3MissRate*100,
			perInstance, (perInstance-basePower)/basePower*100)
	}
	fmt.Println("\nConsolidation cuts per-instance power sharply (the paper's")
	fmt.Println("Figure 17) while contention shows up in latency and miss rates.")
}
