// Kernelsweep: churn a fleet far past what per-frame simulation can
// afford, by running most of it on the surrogate fidelity tier.
//
// The churn and faults demos simulate every session frame by frame —
// honest, but linear in sessions, which caps sweeps at thousands. This
// demo drives the same churn lifecycle through the global event kernel
// with fidelity tiers: machines [0, fidelity) run the full per-frame
// simulator, the rest of the fleet runs calibrated per-profile response
// curves (RTT, FPS and utilization as a function of machine load, with
// deterministic per-session jitter). Tens of thousands of offered
// sessions complete in seconds, while the sampled cohort stays
// bit-exact full simulation — the anchor the cheap tier is checked
// against (see TestGoldenFidelityTiers in internal/core).
package main

import (
	"flag"
	"fmt"
	"time"

	"pictor"
)

func main() {
	machines := flag.Int("machines", 500, "server machine count")
	cores := flag.String("cores", "8,4", "per-machine core classes, cycled")
	rate := flag.Float64("rate", 1000, "mean Poisson arrivals per epoch")
	duration := flag.Float64("duration", 2, "mean session length in epochs")
	epochs := flag.Int("epochs", 12, "churn horizon")
	fidelity := flag.Int("fidelity", 4, "machines [0, N) on full per-frame simulation; the rest run the surrogate tier")
	occupancy := flag.Bool("occupancy", false, "print the per-(machine, epoch) occupancy rows of the full-sim cohort")
	flag.Parse()

	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, 5

	shape := pictor.FleetShape{
		Machines:          *machines,
		Policy:            pictor.PolicyRoundRobin,
		Mix:               pictor.MixHeavy,
		CoreClasses:       *cores,
		Epochs:            *epochs,
		ArrivalRate:       *rate,
		MeanSessionEpochs: *duration,
		Migrate:           true,
		SurrogateTail:     true,
		FidelitySampled:   *fidelity,
		OccupancyDetail:   *occupancy,
	}

	fmt.Printf("sweeping %d machines × %d epochs at %g arrivals/epoch — full simulation on %d machine(s), surrogate tier on %d...\n\n",
		*machines, *epochs, *rate, *fidelity, *machines-*fidelity)
	start := time.Now()
	r := pictor.RunFleetChurn(shape, cfg)
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("offered %d sessions (%d rejected, %d migrations), mean active %.0f, availability %.1f%%, mean fleet power %.0f kW\n",
		r.Arrivals, r.Rejected, r.Migrations, r.MeanActive, 100*r.Availability, r.MeanPowerWatts/1000)
	fmt.Printf("done in %s — the same horizon on full per-frame simulation is hours, not seconds\n", elapsed)

	if *occupancy {
		// The cohort rows are real simulation; surrogate rows are
		// predictions. The tier column says which is which.
		fmt.Printf("\nper-(machine, epoch) occupancy (first %d machines shown):\n", cohortShown)
		trimmed := r
		trimmed.Epochs = nil
		for _, e := range r.Epochs {
			if len(e.Occupancy) > cohortShown {
				e.Occupancy = e.Occupancy[:cohortShown]
			}
			trimmed.Epochs = append(trimmed.Epochs, e)
		}
		fmt.Print(pictor.OccupancyTable(trimmed))
	}
}

// cohortShown caps the printed occupancy rows: a 500-machine table is
// a file, not a terminal demo.
const cohortShown = 8
