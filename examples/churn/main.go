// Churn: drive a fleet through tenant churn — Poisson arrivals,
// exponential session lengths, departures — and show what RTT-driven
// migration buys over static placement.
//
// The fleet demo places a fixed request stream once and never looks
// back; real fleets are never that lucky. Here tenants arrive and leave
// continuously, and a blind round-robin placer sooner or later
// co-locates heavyweights (the heavy mix is full of Dota2s and
// SuperTuxKarts) on one machine while another idles. Static placement
// pays that QoS bill every epoch until the tenants leave; the migration
// controller reads each machine's measured mean RTT after every epoch
// and re-places a session off any machine past the QoS ceiling onto the
// coolest machine with genuine (un-overcommitted) headroom. Both runs
// churn the identical tenant population, so the delta is the
// controller's doing.
package main

import (
	"flag"
	"fmt"
	"time"

	"pictor"
)

func main() {
	machines := flag.Int("machines", 4, "server machine count")
	cores := flag.String("cores", "", "per-machine core classes, cycled (e.g. 8,4); empty = all 8")
	rate := flag.Float64("rate", 1.6, "mean Poisson arrivals per epoch")
	duration := flag.Float64("duration", 5, "mean session length in epochs")
	epochs := flag.Int("epochs", 10, "churn horizon")
	mix := flag.String("mix", pictor.MixHeavy, "arrival mix (suite, shuffled, heavy)")
	policy := flag.String("policy", pictor.PolicyRoundRobin, "placement policy")
	seconds := flag.Float64("seconds", 10, "measurement window per epoch (simulated seconds)")
	parallel := flag.Int("parallel", 0, "runner workers (0 = all cores)")
	flag.Parse()

	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = *seconds
	cfg.Parallel = *parallel

	shape := pictor.FleetShape{
		Machines:          *machines,
		Policy:            *policy,
		Mix:               *mix,
		CoreClasses:       *cores,
		Epochs:            *epochs,
		ArrivalRate:       *rate,
		MeanSessionEpochs: *duration,
	}

	fmt.Printf("churning %d machines for %d epochs (%s mix, %s placement, rate %g, mean session %g epochs)...\n\n",
		*machines, *epochs, *mix, *policy, *rate, *duration)
	start := time.Now()
	rs := pictor.RunChurnComparison(shape, cfg)
	static, migrated := rs[0], rs[1]
	fmt.Print(pictor.ChurnComparisonTable(rs))
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("\nadmission under churn: %d rejected, %d retried, %d recovered, %d lost (migrate run)\n",
		migrated.Rejected, migrated.Retried, migrated.Recovered, migrated.Lost)

	fmt.Printf("\nper-epoch view with migration enabled:\n")
	fmt.Print(pictor.ChurnTable(migrated))

	switch {
	case migrated.QoSViolations < static.QoSViolations:
		fmt.Printf("\nmigration cut QoS violations %d → %d (%d migration(s)); mean RTT %.1f → %.1f ms\n",
			static.QoSViolations, migrated.QoSViolations, migrated.Migrations,
			static.RTT.Mean, migrated.RTT.Mean)
	case migrated.Migrations == 0:
		fmt.Printf("\nno machine crossed the QoS RTT ceiling for long enough to migrate — raise -rate or -duration for more pressure\n")
	default:
		fmt.Printf("\nmigration moved %d session(s) without changing the QoS count (%d) — the fleet was either healthy or saturated\n",
			migrated.Migrations, migrated.QoSViolations)
	}
}
