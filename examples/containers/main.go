// Containers: measure what Docker-style containerization costs a cloud
// 3D instance (§5.4) and what the §6 frame-copy optimizations give
// back — the two deployment decisions a cloud-gaming operator makes.
package main

import (
	"fmt"

	"pictor"
)

func main() {
	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = 25

	fmt.Println("container overhead per benchmark (bare metal vs Docker-like):")
	for _, prof := range pictor.Suite() {
		r := pictor.RunContainerOverhead(prof, cfg)
		fmt.Printf("  %-4s server FPS %5.1f → %5.1f (%+.1f%%)   RTT %6.1f → %6.1f ms (%+.1f%%)\n",
			prof.Name, r.BareServerFPS, r.ContServerFPS, -r.FPSOverheadPct,
			r.BareRTT, r.ContRTT, r.RTTOverheadPct)
	}

	fmt.Println("\nframe-copy optimizations (XGetWindowAttributes memoization +")
	fmt.Println("two-step asynchronous copy) per benchmark:")
	for _, prof := range pictor.Suite() {
		r := pictor.RunOptimization(prof, cfg)
		fmt.Printf("  %-4s server FPS %5.1f → %5.1f (%+.1f%%)   FC %5.1f → %4.1f ms\n",
			prof.Name, r.BaseServerFPS, r.OptServerFPS, r.ServerFPSGain,
			r.BaseFCMs, r.OptFCMs)
	}
}
