// Fleet: consolidate a stream of instance requests across a
// multi-server fleet and compare placement policies.
//
// The paper stops at one server (§5.2: how many instances a machine
// sustains before interactive RTT degrades); this demo asks the next
// question — where to place workloads across N machines. It admits the
// same request stream under four policies (round-robin, least-loaded by
// count, least-loaded by predicted CPU demand, and profile-affinity
// bin-packing informed by measured pair interference) and prints the
// density / QoS / power tradeoff each one picks.
package main

import (
	"flag"
	"fmt"
	"time"

	"pictor"
)

func main() {
	machines := flag.Int("machines", 4, "server machine count")
	requests := flag.Int("requests", 12, "instance-request stream length")
	mix := flag.String("mix", pictor.MixHeavy, "arrival mix (suite, shuffled, heavy)")
	seconds := flag.Float64("seconds", 20, "measurement window (simulated seconds)")
	parallel := flag.Int("parallel", 0, "runner workers (0 = all cores)")
	flag.Parse()

	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = *seconds
	cfg.Parallel = *parallel

	shape := pictor.FleetShape{Machines: *machines, Mix: *mix, Requests: *requests}

	fmt.Printf("consolidating %d requests (%s mix) onto %d machines, all %d policies...\n\n",
		*requests, *mix, *machines, len(pictor.FleetPolicyNames()))
	start := time.Now()
	rs := pictor.RunFleetComparison(shape, cfg)
	fmt.Print(pictor.FleetComparisonTable(rs))
	fmt.Printf("\ndone in %s\n\n", time.Since(start).Round(time.Millisecond))

	// Show where the bin-packer actually put things.
	for _, r := range rs {
		if r.Policy != pictor.PolicyBinPack {
			continue
		}
		fmt.Println("binpack placement:")
		for _, m := range r.Machines {
			fmt.Printf("  machine %d (predicted %.1f cores):", m.Machine, m.PredictedDemand)
			if len(m.Results) == 0 {
				fmt.Print("  idle")
			}
			for _, ir := range m.Results {
				fmt.Printf("  %s %.0ffps", ir.Benchmark, ir.ClientFPS)
			}
			fmt.Println()
		}
	}
}
