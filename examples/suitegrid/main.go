// Suitegrid: run the paper's complete evaluation — methodology
// comparison, 1–N co-location sweeps, the 15 co-location pairs,
// container overhead, frame-copy optimizations and framework overhead,
// over all six suite benchmarks — as one flat grid of independent
// trials on the parallel experiment runner.
//
// With -reps > 1 every trial repeats under independently derived seeds
// and the reported numbers are cross-seed aggregates.
package main

import (
	"flag"
	"fmt"
	"time"

	"pictor"
)

func main() {
	parallel := flag.Int("parallel", 0, "worker count (0 = all cores)")
	reps := flag.Int("reps", 1, "repetitions per trial")
	seconds := flag.Float64("seconds", 20, "measurement window (simulated seconds)")
	flag.Parse()

	cfg := pictor.DefaultExperimentConfig()
	cfg.Seconds = *seconds
	cfg.Parallel = *parallel
	cfg.Reps = *reps
	cfg.MaxInstances = 4

	fmt.Printf("expanding the full paper grid (%d workers, %d rep(s))...\n",
		pictor.EffectiveParallel(cfg.Parallel), pictor.EffectiveReps(cfg.Reps))
	start := time.Now()
	g := pictor.RunSuiteGrid(cfg)
	fmt.Printf("grid done in %s\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Println("benchmark  IC err   4-inst cli-FPS   container FPS   optimized FPS")
	for _, prof := range pictor.Suite() {
		m := g.Methodology[prof.Name]
		char := g.Characterization[prof.Name]
		fmt.Printf("%-9s %5.1f%%  %14.1f  %13.1f%%  %+13.1f%%\n",
			prof.Name,
			m[1].ErrVsHuman, // row 1 is Pictor-IC (row 0 is the human reference)
			char[len(char)-1][0].ClientFPS,
			g.Container[prof.Name].FPSOverheadPct,
			g.Optimization[prof.Name].ServerFPSGain)
	}

	ok := 0
	for _, rs := range g.Pairs {
		if rs[0].ClientFPS >= 25 && rs[1].ClientFPS >= 25 {
			ok++
		}
	}
	fmt.Printf("\nco-location: %d of %d pairs meet 25-FPS QoS for both (paper: 11 of 15)\n", ok, len(g.Pairs))
}
