// Quickstart: run one cloud-rendered benchmark with a human-like player
// and print the measurements Pictor's analysis framework collects.
package main

import (
	"fmt"

	"pictor"
)

func main() {
	// A cluster is one simulated server machine (8 cores, a
	// GTX1080Ti-class GPU, 1 Gbps per-instance networking) plus the
	// client machines of its instances.
	cluster := pictor.NewCluster(pictor.Options{Seed: 1})

	// Place SuperTuxKart on it, played by the reference human policy.
	stk := pictor.SuiteByName("STK")
	cluster.AddInstance(pictor.NewInstanceConfig(stk, pictor.HumanDriver()))

	// 3 simulated seconds of warmup (discarded), 30 measured.
	cluster.RunSeconds(3, 30)

	r := cluster.Results()[0]
	fmt.Printf("%s on the cloud rendering system:\n", stk.FullName)
	fmt.Printf("  server FPS      %6.1f\n", r.ServerFPS)
	fmt.Printf("  client FPS      %6.1f\n", r.ClientFPS)
	fmt.Printf("  input RTT       %6.1f ms (p99 %.1f ms)\n", r.RTT.Mean, r.RTT.P99)
	fmt.Printf("  server time     %6.1f ms of that\n", r.ServerTimeMs())
	fmt.Printf("  app CPU         %6.0f %%\n", r.AppCPUUtil)
	fmt.Printf("  VNC CPU         %6.0f %%\n", r.VNCCPUUtil)
	fmt.Printf("  GPU             %6.1f %%\n", r.GPUUtil)
	fmt.Printf("  network         %6.0f Mbps to the client\n", r.NetDownMbps)
	fmt.Printf("  PCIe frame copy %6.1f MB/s GPU→CPU\n", r.PCIeFromGPU)
	fmt.Printf("  wall power      %6.0f W\n", cluster.TotalPowerWatts())
}
