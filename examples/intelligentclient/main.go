// Intelligentclient: train Pictor's CNN+LSTM client for a benchmark
// and show that the system behaves the same under the AI as under the
// human it learned from — the paper's central validation (Table 3).
package main

import (
	"fmt"
	"math"

	"pictor"
)

func main() {
	prof := pictor.SuiteByName("RE") // Red Eclipse (arena FPS)

	fmt.Printf("benchmark: %s\n", prof.FullName)
	fmt.Println("recording a human session and training the CNN+LSTM client...")
	icDriver := pictor.IntelligentClientDriver(prof) // records + trains (cached)

	run := func(driver pictor.DriverFactory) pictor.InstanceResult {
		cluster := pictor.NewCluster(pictor.Options{Seed: 21})
		cluster.AddInstance(pictor.NewInstanceConfig(prof, driver))
		cluster.RunSeconds(3, 40)
		return cluster.Results()[0]
	}

	human := run(pictor.HumanDriver())
	ic := run(icDriver)

	fmt.Printf("\n%-22s %12s %12s\n", "", "human", "intelligent")
	fmt.Printf("%-22s %9.1f ms %9.1f ms\n", "mean input RTT", human.RTT.Mean, ic.RTT.Mean)
	fmt.Printf("%-22s %12.1f %12.1f\n", "server FPS", human.ServerFPS, ic.ServerFPS)
	fmt.Printf("%-22s %12.1f %12.1f\n", "client FPS", human.ClientFPS, ic.ClientFPS)
	fmt.Printf("%-22s %11.0f%% %11.0f%%\n", "app CPU", human.AppCPUUtil, ic.AppCPUUtil)

	errPct := math.Abs(ic.RTT.Mean-human.RTT.Mean) / human.RTT.Mean * 100
	fmt.Printf("\nmean-RTT error of the intelligent client vs the human: %.1f%%\n", errPct)
	fmt.Println("(the paper reports 1.6% on average across the suite)")
}
