// Faults: inject machine crashes into a churning fleet and show what
// session failover (retry with exponential backoff) and brown-out QoS
// tiers (degrade resolution before evicting) buy over dropping every
// victim on the floor.
//
// Machines crash on a deterministic schedule drawn from MTBF/MTTR
// (exponential up- and downtime, plus a cold-start epoch after repair);
// a crash evicts every resident session. The comparison runs the same
// tenant population, the same execution noise and the SAME failure
// schedule three ways: a healthy fleet (the ceiling), drop-on-failure
// (the floor — evicted and rejected sessions are lost), and the
// resilient posture (victims re-queue with capped retries and doubling
// backoff, and overloaded machines shed demand by serving lower
// resolution tiers instead of evicting). The availability column —
// QoS-compliant session-epochs over offered session-epochs — is the
// paper-style punchline: retry+degrade recovers a chunk of the
// availability the crashes destroyed, for free.
package main

import (
	"flag"
	"fmt"
	"time"

	"pictor"
)

func main() {
	machines := flag.Int("machines", 5, "server machine count")
	cores := flag.String("cores", "8,8,4", "per-machine core classes, cycled")
	rate := flag.Float64("rate", 3, "mean Poisson arrivals per epoch")
	duration := flag.Float64("duration", 4, "mean session length in epochs")
	epochs := flag.Int("epochs", 8, "churn horizon")
	mix := flag.String("mix", pictor.MixHeavy, "arrival mix (suite, shuffled, heavy)")
	policy := flag.String("policy", pictor.PolicyLeastDemand, "placement policy")
	mtbf := flag.Float64("mtbf", 5, "mean epochs between crashes per machine")
	mttr := flag.Float64("mttr", 1, "mean epochs to repair a crashed machine")
	retries := flag.Int("retries", 3, "failover retry attempts per victim session")
	backoff := flag.Int("backoff", 1, "base retry backoff in epochs (doubles per attempt)")
	degrade := flag.Bool("degrade", true, "enable brown-out QoS tiers")
	seconds := flag.Float64("seconds", 5, "measurement window per epoch (simulated seconds)")
	parallel := flag.Int("parallel", 0, "runner workers (0 = all cores)")
	flag.Parse()

	cfg := pictor.DefaultExperimentConfig()
	cfg.WarmupSeconds, cfg.Seconds = 1, *seconds
	cfg.Parallel = *parallel

	shape := pictor.FleetShape{
		Machines:           *machines,
		Policy:             *policy,
		Mix:                *mix,
		CoreClasses:        *cores,
		Epochs:             *epochs,
		ArrivalRate:        *rate,
		MeanSessionEpochs:  *duration,
		MTBFEpochs:         *mtbf,
		MTTREpochs:         *mttr,
		RetryAttempts:      *retries,
		RetryBackoffEpochs: *backoff,
		Degrade:            *degrade,
	}

	fmt.Printf("crashing %d machines (MTBF %g, MTTR %g epochs) under churn for %d epochs (%s mix, %s placement, rate %g)...\n\n",
		*machines, *mtbf, *mttr, *epochs, *mix, *policy, *rate)
	start := time.Now()
	rs := pictor.RunFaultComparison(shape, cfg)
	healthy, drop, resilient := rs[0], rs[1], rs[2]
	fmt.Print(pictor.ChurnComparisonTable(rs))
	fmt.Printf("\ndone in %s\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("\nper-epoch view of the resilient run:\n")
	fmt.Print(pictor.ChurnTable(resilient))

	lostToCrashes := healthy.Availability - drop.Availability
	recovered := resilient.Availability - drop.Availability
	switch {
	case resilient.Availability > drop.Availability:
		fmt.Printf("\ncrashes cost %.1f points of availability (%.1f%% → %.1f%%); retry+degrade clawed back %.1f points (→ %.1f%%), recovering %d session(s) and serving %d degraded session-epoch(s) instead of evicting\n",
			100*lostToCrashes, 100*healthy.Availability, 100*drop.Availability,
			100*recovered, 100*resilient.Availability,
			resilient.Recovered, resilient.DegradedSessionEpochs)
	case drop.Crashes == 0:
		fmt.Printf("\nno machine crashed inside the horizon — raise -mtbf pressure (lower the value) or -epochs\n")
	default:
		fmt.Printf("\nretry+degrade did not improve availability (%.1f%% vs %.1f%%) — the fleet is likely saturated, so recovered sessions re-create the QoS pressure they fled; add headroom (-machines) or lower -rate\n",
			100*resilient.Availability, 100*drop.Availability)
	}
}
